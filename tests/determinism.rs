//! Tier-1 determinism guarantee of the parallel simulator: algorithm outputs
//! and the *entire* accounting ledger — rounds, communication, peak load,
//! `rounds_by_phase`, `primitive_counts` — must be bit-identical at every
//! thread count.
//!
//! This is the contract that makes the thread pool an execution detail: the
//! MPC model's measured quantities may never depend on how the simulator's own
//! local work was scheduled. The CI thread matrix (`RAYON_NUM_THREADS=1` and
//! `=4`) runs this same suite through the env-var path; here the thread count
//! is varied in-process through `ThreadPool::install`.

use monge_mpc_suite::lis_mpc::lis_witness_mpc;
use monge_mpc_suite::monge::PermutationMatrix;
use monge_mpc_suite::monge_mpc::{self, MulParams};
use monge_mpc_suite::mpc_runtime::{Cluster, FaultPlan, Ledger, MpcConfig};
use monge_mpc_suite::seaweed_lis::kernel::SeaweedKernel;
use rand::prelude::*;

fn random_permutation(n: usize, seed: u64) -> PermutationMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<u32> = (0..n as u32).collect();
    v.shuffle(&mut rng);
    PermutationMatrix::from_rows(v)
}

fn noisy_sequence(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| i as u32 + rng.gen_range(0..(n as u32 / 3).max(2)))
        .collect()
}

/// The full end-to-end workload: one forced-recursion ⊡ multiplication and one
/// multi-level MPC LIS *with witness recovery*, returning everything that must
/// be invariant (the recovered witness positions included — the traceback's
/// splits and base reconstructions must not depend on scheduling).
#[allow(clippy::type_complexity)]
fn workload() -> (
    PermutationMatrix,
    Ledger,
    usize,
    SeaweedKernel,
    Ledger,
    Vec<usize>,
) {
    // Multiplication with several split/combine levels.
    let n = 300;
    let a = random_permutation(n, 0xA11CE);
    let b = random_permutation(n, 0xB0B);
    let mut mul_cluster = Cluster::new(MpcConfig::new(n, 0.5));
    let params = MulParams::default()
        .with_h(3)
        .with_g(8)
        .with_local_threshold(24);
    let product = monge_mpc::mul(&mut mul_cluster, &a, &b, &params);
    let mul_ledger = mul_cluster.ledger().clone();

    // LIS with several merge levels (a large δ shrinks the strict budget and
    // forces depth; the space-conformant pipeline runs violation-free), with
    // the witness traceback on top.
    let seq = noisy_sequence(600, 0xC0DE);
    let mut lis_cluster = Cluster::new(MpcConfig::new(seq.len(), 0.75));
    let outcome = lis_witness_mpc(&mut lis_cluster, &seq, &MulParams::default());
    let lis_ledger = lis_cluster.ledger().clone();

    (
        product,
        mul_ledger,
        outcome.length,
        outcome.kernel,
        lis_ledger,
        outcome.witness.expect("witness requested"),
    )
}

/// The LIS witness workload under a fixed fault plan: a straggler delay, a
/// mid-run kill and a late kill of machine 0 (which owns node 0 of every
/// level). Fault firing, checkpointing, repair and all recovery accounting
/// must be as thread-count-invariant as the fault-free pipeline.
fn faulted_workload() -> (usize, SeaweedKernel, Vec<usize>, Ledger) {
    let seq = noisy_sequence(600, 0xC0DE);
    let plan = FaultPlan::delay(0, 20, 2).and_kill(1, 50).and_kill(0, 120);
    let mut cluster = Cluster::new(MpcConfig::new(seq.len(), 0.75).with_faults(plan));
    let outcome = lis_witness_mpc(&mut cluster, &seq, &MulParams::default());
    (
        outcome.length,
        outcome.kernel,
        outcome.witness.expect("witness requested"),
        cluster.ledger().clone(),
    )
}

fn at_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("shim pool construction is infallible")
        .install(f)
}

#[test]
fn outputs_and_ledgers_identical_across_thread_counts() {
    let baseline = at_threads(1, workload);
    for threads in [2, 4, 8] {
        let run = at_threads(threads, workload);
        assert_eq!(
            baseline.0, run.0,
            "⊡ product must not depend on thread count ({threads} threads)"
        );
        assert_eq!(
            baseline.1, run.1,
            "⊡ ledger (rounds, comm, loads, phases, primitive counts) diverged at {threads} threads"
        );
        assert_eq!(
            baseline.2, run.2,
            "LIS length must not depend on thread count ({threads} threads)"
        );
        assert_eq!(
            baseline.3, run.3,
            "LIS semi-local kernel diverged at {threads} threads"
        );
        assert_eq!(
            baseline.4, run.4,
            "LIS ledger diverged at {threads} threads"
        );
        assert_eq!(
            baseline.5, run.5,
            "LIS witness diverged at {threads} threads"
        );
    }
}

#[test]
fn faulted_run_identical_across_thread_counts() {
    let fault_free = at_threads(1, workload);
    let baseline = at_threads(1, faulted_workload);
    // The fixed plan genuinely fired (both kills and the delay) and the
    // recovery reproduced the fault-free outputs bit for bit.
    assert_eq!(baseline.3.fault_events.len(), 3);
    assert_eq!(baseline.3.kills(), 2);
    assert_eq!(baseline.3.stall_rounds, 2);
    assert_eq!(baseline.3.space_violations, 0);
    assert_eq!(baseline.0, fault_free.2, "recovered length diverged");
    assert_eq!(baseline.1, fault_free.3, "recovered kernel diverged");
    assert_eq!(baseline.2, fault_free.5, "recovered witness diverged");
    for threads in [4, 8] {
        let run = at_threads(threads, faulted_workload);
        assert_eq!(
            baseline.0, run.0,
            "faulted LIS length diverged at {threads} threads"
        );
        assert_eq!(
            baseline.1, run.1,
            "faulted kernel diverged at {threads} threads"
        );
        assert_eq!(
            baseline.2, run.2,
            "faulted witness diverged at {threads} threads"
        );
        assert_eq!(
            baseline.3, run.3,
            "faulted ledger (fault events, recovery scopes, stalls) diverged at {threads} threads"
        );
    }
}

#[test]
fn ledger_totals_are_nontrivial() {
    // Guard against the determinism test passing vacuously on empty ledgers.
    let (_, mul_ledger, lis_len, _, lis_ledger, witness) = workload();
    assert!(mul_ledger.rounds > 0 && mul_ledger.communication > 0);
    assert!(!mul_ledger.rounds_by_phase.is_empty());
    assert!(!mul_ledger.primitive_counts.is_empty());
    assert!(lis_ledger.rounds > 0 && lis_len > 0);
    assert_eq!(witness.len(), lis_len);
    assert!(lis_ledger
        .rounds_by_phase
        .keys()
        .any(|k| k.starts_with("lis-witness-")));
}

#[test]
fn env_thread_count_matches_install_path() {
    // Whatever RAYON_NUM_THREADS the harness set (the CI matrix pins 1 and 4),
    // the result must equal the forced-sequential reference.
    let ambient = workload();
    let sequential = at_threads(1, workload);
    assert_eq!(ambient.0, sequential.0);
    assert_eq!(ambient.1, sequential.1);
    assert_eq!(ambient.2, sequential.2);
    assert_eq!(ambient.3, sequential.3);
    assert_eq!(ambient.4, sequential.4);
    assert_eq!(ambient.5, sequential.5);
}
