//! Cross-crate integration tests: the sequential algebra, the MPC simulator and the
//! distributed algorithms must all agree with each other and with the classical
//! baselines.

use monge_mpc_suite::monge::multiway::mul_multiway;
use monge_mpc_suite::monge::verify::{
    explicit_distribution, is_monge, is_subunit_monge, verify_product,
};
use monge_mpc_suite::monge::{mul_dense, mul_steady_ant, PermutationMatrix};
use monge_mpc_suite::monge_mpc::{self, GridPhase, MulParams};
use monge_mpc_suite::mpc_runtime::{Cluster, MpcConfig};
use monge_mpc_suite::seaweed_lis::baselines::{lcs_length_dp, lis_length_patience};
use monge_mpc_suite::seaweed_lis::kernel::SeaweedKernel;
use monge_mpc_suite::seaweed_lis::lis::SemiLocalLis;
use monge_mpc_suite::{lis_mpc, seaweed_lis};
use rand::prelude::*;

fn random_permutation(n: usize, rng: &mut StdRng) -> PermutationMatrix {
    let mut v: Vec<u32> = (0..n as u32).collect();
    v.shuffle(rng);
    PermutationMatrix::from_rows(v)
}

#[test]
fn all_multiplication_engines_agree() {
    let mut rng = StdRng::seed_from_u64(100);
    for &n in &[30usize, 75, 150] {
        let a = random_permutation(n, &mut rng);
        let b = random_permutation(n, &mut rng);
        let dense = mul_dense(&a, &b);
        assert_eq!(mul_steady_ant(&a, &b), dense);
        assert_eq!(mul_multiway(&a, &b, 4, 16), dense);

        // Strict cluster at a large δ: the shrunken budget forces several
        // split/combine levels at the paper's own parameters.
        let mut cluster = Cluster::new(MpcConfig::new(n, 0.75));
        let params = MulParams::default();
        assert_eq!(monge_mpc::mul(&mut cluster, &a, &b, &params), dense);
        assert!(verify_product(&a, &b, &dense));
    }
}

#[test]
fn products_are_unit_monge() {
    let mut rng = StdRng::seed_from_u64(101);
    let a = random_permutation(60, &mut rng);
    let b = random_permutation(60, &mut rng);
    let c = mul_steady_ant(&a, &b);
    let dist = explicit_distribution(&c.to_sub());
    assert!(is_monge(&dist));
    assert!(is_subunit_monge(&dist));
}

#[test]
fn mpc_lis_agrees_with_every_sequential_path() {
    let mut rng = StdRng::seed_from_u64(102);
    for &n in &[50usize, 200, 500] {
        let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..10_000)).collect();
        let patience = lis_length_patience(&seq);
        assert_eq!(seaweed_lis::lis::lis_length(&seq), patience);

        let mut cluster = Cluster::new(MpcConfig::new(n, 0.7));
        let outcome = lis_mpc::lis_kernel_mpc(&mut cluster, &seq, &MulParams::default());
        assert_eq!(outcome.length, patience);
        assert_eq!(cluster.ledger().space_violations, 0);

        // Semi-local agreement between the MPC kernel and the sequential index.
        let semi = SemiLocalLis::new(&seq);
        let queries = outcome.kernel.queries();
        for _ in 0..30 {
            let l = rng.gen_range(0..=n);
            let r = rng.gen_range(l..=n);
            assert_eq!(queries.lcs_window(l, r), semi.lis_window(l, r));
        }
    }
}

#[test]
fn witness_recovery_agrees_with_every_sequential_path() {
    // End to end: the MPC witness, the sequential traced-kernel witness and the
    // patience baseline must all be maximal and genuinely increasing, and the
    // MPC traceback must stay within 2× of the length-only rounds.
    let mut rng = StdRng::seed_from_u64(107);
    for &n in &[60usize, 300, 800] {
        let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..2_000)).collect();
        let patience = lis_length_patience(&seq);

        let mut plain = Cluster::new(MpcConfig::new(n, 0.7));
        let _ = lis_mpc::lis_kernel_mpc(&mut plain, &seq, &MulParams::default());

        let mut cluster = Cluster::new(MpcConfig::new(n, 0.7));
        let outcome = lis_mpc::lis_witness_mpc(&mut cluster, &seq, &MulParams::default());
        let witness = outcome.witness.expect("witness requested");
        assert_eq!(witness.len(), patience);
        assert!(witness.windows(2).all(|w| seq[w[0]] < seq[w[1]]));
        assert_eq!(cluster.ledger().space_violations, 0);
        assert!(
            cluster.rounds() <= 2 * plain.rounds(),
            "traceback round blow-up"
        );

        let sequential = seaweed_lis::lis::lis_witness(&seq);
        assert_eq!(sequential.len(), patience);
        assert!(sequential.windows(2).all(|w| seq[w[0]] < seq[w[1]]));
    }

    // LCS witness: a genuine common subsequence of both strings.
    let a: Vec<u32> = (0..80).map(|_| rng.gen_range(0..12)).collect();
    let b: Vec<u32> = (0..80).map(|_| rng.gen_range(0..12)).collect();
    let mut cluster = Cluster::new(MpcConfig::new(a.len() * b.len(), 0.6));
    let outcome = lis_mpc::lcs::lcs_witness_mpc(&mut cluster, &a, &b, &MulParams::default());
    assert_eq!(outcome.length, lcs_length_dp(&a, &b));
    assert_eq!(outcome.witness.len(), outcome.length);
    assert!(outcome.witness.iter().all(|&(i, j)| a[i] == b[j]));
    assert!(outcome
        .witness
        .windows(2)
        .all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
    assert_eq!(cluster.ledger().space_violations, 0);
}

#[test]
fn mpc_lcs_agrees_with_dp() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..5 {
        let m = rng.gen_range(20..120);
        let n = rng.gen_range(20..120);
        let a: Vec<u32> = (0..m).map(|_| rng.gen_range(0..12)).collect();
        let b: Vec<u32> = (0..n).map(|_| rng.gen_range(0..12)).collect();
        let mut cluster = Cluster::new(MpcConfig::new(m * n, 0.6));
        let got = lis_mpc::lcs_length_mpc(&mut cluster, &a, &b, &MulParams::default());
        assert_eq!(got, lcs_length_dp(&a, &b));
    }
}

#[test]
fn kernel_composition_through_mpc_multiplication() {
    // The seaweed composition law holds when the ⊡ is evaluated by the MPC engine.
    let mut rng = StdRng::seed_from_u64(104);
    let x: Vec<u32> = (0..8).map(|_| rng.gen_range(0..4)).collect();
    let y1: Vec<u32> = (0..12).map(|_| rng.gen_range(0..4)).collect();
    let y2: Vec<u32> = (0..9).map(|_| rng.gen_range(0..4)).collect();
    let k1 = SeaweedKernel::comb(&x, &y1);
    let k2 = SeaweedKernel::comb(&x, &y2);
    let (p1, p2) = seaweed_lis::kernel::compose_operands(&k1, &k2);

    let mut cluster = Cluster::new(MpcConfig::new(p1.size(), 0.75));
    let params = MulParams::default();
    let product = monge_mpc::mul(&mut cluster, &p1, &p2, &params);
    let composed = seaweed_lis::kernel::compose_from_product(&k1, &k2, product);

    let y: Vec<u32> = y1.iter().chain(y2.iter()).copied().collect();
    assert_eq!(composed, SeaweedKernel::comb(&x, &y));
}

#[test]
fn grid_phase_strategies_are_equivalent() {
    // The space-conformant tree descent and the gathering reference oracle must
    // produce bit-identical products with identical round counts; only the tree
    // strategy stays within the per-machine budget (it runs on a strict
    // cluster), while the reference gather records violations.
    let mut rng = StdRng::seed_from_u64(105);
    let n = 1 << 11;
    let a = random_permutation(n, &mut rng);
    let b = random_permutation(n, &mut rng);
    let expected = mul_steady_ant(&a, &b);

    let params = MulParams::default().with_grid_phase(GridPhase::Tree);
    let mut tree = Cluster::new(MpcConfig::new(n, 0.5)); // strict: panics on overshoot
    assert_eq!(monge_mpc::mul(&mut tree, &a, &b, &params), expected);
    assert_eq!(tree.ledger().space_violations, 0);

    let params = MulParams::default().with_grid_phase(GridPhase::Reference);
    let mut reference = Cluster::new(MpcConfig::lenient(n, 0.5));
    assert_eq!(monge_mpc::mul(&mut reference, &a, &b, &params), expected);
    assert!(
        reference.ledger().space_violations > 0,
        "the reference gather must overshoot at n = {n}"
    );
    assert_eq!(
        tree.rounds(),
        reference.rounds(),
        "reference mirrors the tree descent's superstep schedule"
    );
}

#[test]
fn space_accounting_is_reported() {
    // The ledger must see realistic loads: nothing above the total input size, and a
    // nonzero peak once data is distributed.
    let mut rng = StdRng::seed_from_u64(106);
    let n = 4096;
    let a = random_permutation(n, &mut rng);
    let b = random_permutation(n, &mut rng);
    let mut cluster = Cluster::new(MpcConfig::new(n, 0.5));
    let _ = monge_mpc::mul(&mut cluster, &a, &b, &MulParams::default());
    let ledger = cluster.ledger();
    assert!(ledger.max_machine_load > 0);
    assert!(ledger.rounds > 0);
    assert!(ledger.communication > 0);
}

#[test]
fn deterministic_across_runs() {
    // The whole pipeline is deterministic: same input, same ledger, same output.
    let mut rng = StdRng::seed_from_u64(107);
    let n = 300;
    let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
    let run = || {
        let mut cluster = Cluster::new(MpcConfig::new(n, 0.7));
        let out = lis_mpc::lis_kernel_mpc(&mut cluster, &seq, &MulParams::default());
        (
            out.length,
            out.levels,
            cluster.rounds(),
            cluster.ledger().communication,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn lis_and_lcs_record_zero_violations_in_every_phase() {
    // Regression pin for the Theorem 1.3 space conformance: run the pipelines
    // in record-only mode (so an overshoot would be *counted*, not panic) and
    // assert the per-phase violation breakdown stays empty — in particular for
    // every `lis-*` phase the merge levels create.
    let mut rng = StdRng::seed_from_u64(108);
    for &delta in &[0.5, 0.75] {
        let n = 1 << 12;
        let seq: Vec<u32> = (0..n).map(|_| rng.gen_range(0..n as u32)).collect();
        let mut cluster = Cluster::new(MpcConfig::new(n, delta).recording());
        let outcome = lis_mpc::lis_kernel_mpc(&mut cluster, &seq, &MulParams::default());
        assert!(
            outcome.levels >= 1,
            "budget at δ={delta} must force merging"
        );
        let ledger = cluster.ledger();
        assert_eq!(ledger.space_violations, 0, "violations at δ={delta}");
        assert!(
            ledger.violations_by_phase.is_empty(),
            "per-phase violations at δ={delta}"
        );
        for phase in ["lis-rank", "lis-base", "lis-merge-L1/relabel"] {
            assert!(
                ledger.rounds_by_phase.contains_key(phase),
                "expected ledger phase {phase} at δ={delta}"
            );
        }
    }

    let a: Vec<u32> = (0..96).map(|_| rng.gen_range(0..8)).collect();
    let b: Vec<u32> = (0..96).map(|_| rng.gen_range(0..8)).collect();
    let mut cluster = Cluster::new(MpcConfig::new(96 * 96, 0.6).recording());
    let _ = lis_mpc::lcs::lcs_mpc(&mut cluster, &a, &b, &MulParams::default());
    assert_eq!(cluster.ledger().space_violations, 0);
    assert!(cluster.ledger().violations_by_phase.is_empty());
    assert!(cluster
        .ledger()
        .rounds_by_phase
        .contains_key("lcs-match-pairs"));
}
