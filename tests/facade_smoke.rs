//! Smoke test pinning the facade's re-export surface.
//!
//! Every import below is a path that `tests/end_to_end.rs`, `tests/properties.rs`
//! or the `examples/` rely on. If a crate manifest or the facade's `pub use` list
//! regresses, this file stops compiling — so manifest mistakes are caught by
//! tier-1 (`cargo test -q`) rather than only by the heavier suites.

use monge_mpc_suite::lis_mpc::lcs::lcs_mpc;
use monge_mpc_suite::lis_mpc::{lcs_length_mpc, lis_kernel_mpc, lis_length_mpc, MpcLisOutcome};
use monge_mpc_suite::monge::distribution::DistributionMatrix;
use monge_mpc_suite::monge::multiway::mul_multiway;
use monge_mpc_suite::monge::verify::{explicit_distribution, is_subunit_monge, verify_product};
use monge_mpc_suite::monge::{
    mul_dense, mul_steady_ant, mul_steady_ant_sub, PermutationMatrix, SubPermutationMatrix,
};
use monge_mpc_suite::monge_mpc::{self, GridPhase, MulParams};
use monge_mpc_suite::mpc_runtime::{costs, Cluster, Ledger, MpcConfig};
use monge_mpc_suite::seaweed_lis::baselines::{lcs_length_dp, lis_length_patience};
use monge_mpc_suite::seaweed_lis::kernel::{compose_horizontal, SeaweedKernel};
use monge_mpc_suite::seaweed_lis::lcs::lcs_via_lis;
use monge_mpc_suite::seaweed_lis::lis::{lis_kernel, lis_length, SemiLocalLis};

/// One tiny instance pushed through every layer the facade exposes: sequential
/// multiplication, the MPC multiplication, and the LIS/LCS applications.
#[test]
fn facade_paths_stay_wired() {
    // Sequential seaweed algebra.
    let a = PermutationMatrix::from_rows(vec![2, 0, 1, 3]);
    let b = PermutationMatrix::from_rows(vec![1, 3, 0, 2]);
    let product = mul_steady_ant(&a, &b);
    assert_eq!(product, mul_dense(&a, &b));
    assert_eq!(product, mul_multiway(&a, &b, 2, 2));
    assert!(verify_product(&a, &b, &product));
    assert!(DistributionMatrix::from_permutation(&product).is_monge());

    let sub: SubPermutationMatrix = a.to_sub();
    assert!(is_subunit_monge(&explicit_distribution(&sub)));
    let _ = mul_steady_ant_sub(&sub, &b.to_sub());

    // The MPC layer and its ledger.
    let mut cluster = Cluster::new(MpcConfig::new(4, 0.5).with_space(8));
    let params = MulParams::default().with_grid_phase(GridPhase::Reference);
    assert_eq!(monge_mpc::mul(&mut cluster, &a, &b, &params), product);
    let ledger: &Ledger = cluster.ledger();
    assert!(ledger.rounds >= costs::SORT);

    // LIS / LCS applications, sequential and MPC.
    let seq = [3u32, 1, 4, 1, 5, 9, 2, 6];
    assert_eq!(lis_length(&seq), lis_length_patience(&seq));
    assert_eq!(lis_kernel(&seq).lcs_window(0, seq.len()), lis_length(&seq));
    assert_eq!(SemiLocalLis::new(&seq).lis_window(0, seq.len()), 4);

    let mut cluster = Cluster::new(MpcConfig::new(8, 0.5));
    assert_eq!(lis_length_mpc(&mut cluster, &seq, &MulParams::default()), 4);
    let outcome: MpcLisOutcome = lis_kernel_mpc(&mut cluster, &seq, &MulParams::default());
    assert_eq!(outcome.length, 4);
    assert_eq!(outcome.kernel.lcs_window(0, seq.len()), 4);

    let (x, y) = ([1u32, 2, 3, 2], [2u32, 1, 2, 3]);
    assert_eq!(lcs_via_lis(&x, &y), lcs_length_dp(&x, &y));
    let mut cluster = Cluster::new(MpcConfig::new(16, 0.5));
    assert_eq!(
        lcs_length_mpc(&mut cluster, &x, &y, &MulParams::default()),
        lcs_length_dp(&x, &y)
    );
    let mut cluster = Cluster::new(MpcConfig::new(16, 0.5));
    let (lcs_len, _match_pairs) = lcs_mpc(&mut cluster, &x, &y, &MulParams::default());
    assert_eq!(lcs_len, lcs_length_dp(&x, &y));

    // Sequential kernels compose.
    let k1 = SeaweedKernel::comb(&x, &y[..2]);
    let k2 = SeaweedKernel::comb(&x, &y[2..]);
    assert_eq!(compose_horizontal(&k1, &k2), SeaweedKernel::comb(&x, &y));
}
