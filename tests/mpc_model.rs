//! Tests of the MPC *model* claims themselves: full scalability, round attribution,
//! and the relationship between the paper-parameter algorithm and the warmup
//! baseline.

use monge_mpc_suite::monge::{mul_steady_ant, PermutationMatrix, SubPermutationMatrix};
use monge_mpc_suite::monge_mpc::{self, MulParams, Routing};
use monge_mpc_suite::mpc_runtime::{costs, Cluster, MpcConfig};
use rand::prelude::*;

fn random_permutation(n: usize, rng: &mut StdRng) -> PermutationMatrix {
    let mut v: Vec<u32> = (0..n as u32).collect();
    v.shuffle(rng);
    PermutationMatrix::from_rows(v)
}

#[test]
fn fully_scalable_correctness_across_delta() {
    // The defining property of a fully-scalable algorithm: it works for *any*
    // δ ∈ (0, 1), not just a restricted range.
    let mut rng = StdRng::seed_from_u64(1);
    let n = 512;
    let a = random_permutation(n, &mut rng);
    let b = random_permutation(n, &mut rng);
    let expected = mul_steady_ant(&a, &b);
    for &delta in &[0.1, 0.25, 0.5, 0.75, 0.9] {
        let mut cluster = Cluster::new(MpcConfig::new(n, delta));
        let got = monge_mpc::mul(&mut cluster, &a, &b, &MulParams::default());
        assert_eq!(got, expected, "δ = {delta}");
    }
}

#[test]
fn warmup_baseline_needs_at_least_as_many_rounds() {
    // H = 2 (the §1.4 warmup) produces a deeper recursion than the paper's
    // parameters, hence at least as many rounds, on instances large enough to split.
    let mut rng = StdRng::seed_from_u64(2);
    let n = 1 << 12;
    let a = random_permutation(n, &mut rng);
    let b = random_permutation(n, &mut rng);

    let mut paper = Cluster::new(MpcConfig::lenient(n, 0.5).with_space(64));
    let _ = monge_mpc::mul(&mut paper, &a, &b, &MulParams::default().with_h(8));
    let mut warmup = Cluster::new(MpcConfig::lenient(n, 0.5).with_space(64));
    let _ = monge_mpc::mul(&mut warmup, &a, &b, &MulParams::warmup());
    assert!(
        warmup.rounds() >= paper.rounds(),
        "warmup {} vs paper {}",
        warmup.rounds(),
        paper.rounds()
    );
}

#[test]
fn rounds_are_attributed_to_phases() {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 256;
    let a = random_permutation(n, &mut rng);
    let b = random_permutation(n, &mut rng);
    let mut cluster = Cluster::new(MpcConfig::lenient(n, 0.5).with_space(32));
    let params = MulParams::default()
        .with_local_threshold(32)
        .with_h(4)
        .with_g(8);
    let _ = monge_mpc::mul(&mut cluster, &a, &b, &params);
    let phases = &cluster.ledger().rounds_by_phase;
    for expected in [
        "split",
        "combine",
        "combine-grid",
        "combine-route",
        "local-solve",
        "lift",
    ] {
        assert!(
            phases.contains_key(expected),
            "phase `{expected}` missing from {phases:?}"
        );
    }
    let attributed: u64 = phases.values().sum();
    assert!(attributed <= cluster.rounds());
}

#[test]
fn pierced_routing_communicates_less_than_bands() {
    // Lemma 3.12: with the pierced-interval routing each active subgrid receives
    // only the points whose color lies in its pierced interval, so the routed
    // volume — the ledger's "combine-route" communication — must drop below the
    // row/column-range baseline once the fan-out is nontrivial (H ≥ 4), while
    // the product stays bit-identical.
    let mut rng = StdRng::seed_from_u64(99);
    let n = 1 << 11;
    let a = random_permutation(n, &mut rng);
    let b = random_permutation(n, &mut rng);
    let expected = mul_steady_ant(&a, &b);

    let mut routed = Vec::new();
    for routing in [Routing::Pierced, Routing::Bands] {
        // The Bands baseline deliberately over-routes; record, don't panic.
        let mut cluster = Cluster::new(MpcConfig::lenient(n, 0.5));
        let params = MulParams::default()
            .with_h(8)
            .with_local_threshold(64)
            .with_routing(routing);
        assert_eq!(monge_mpc::mul(&mut cluster, &a, &b, &params), expected);
        routed.push(cluster.ledger().comm_by_phase["combine-route"]);
    }
    assert!(
        routed[0] < routed[1],
        "pierced routing ({}) must communicate less than the band baseline ({})",
        routed[0],
        routed[1]
    );
}

#[test]
fn tree_path_is_space_conformant_at_paper_parameters() {
    // Theorem 1.1's full scalability, enforced: at the paper's default H and G
    // the whole multiplication — split, tree grid phase, pierced routing, local
    // phases — runs on a strict cluster without a single budget overshoot.
    let mut rng = StdRng::seed_from_u64(123);
    let n = 1 << 12;
    let a = random_permutation(n, &mut rng);
    let b = random_permutation(n, &mut rng);
    for &delta in &[0.3, 0.5, 0.7] {
        let mut cluster = Cluster::new(MpcConfig::new(n, delta)); // strict
        let got = monge_mpc::mul(&mut cluster, &a, &b, &MulParams::default());
        assert_eq!(got, mul_steady_ant(&a, &b), "δ = {delta}");
        assert_eq!(cluster.ledger().space_violations, 0, "δ = {delta}");
    }
}

#[test]
fn primitive_costs_are_the_documented_constants() {
    // The round charges used throughout the experiments are the constants in
    // `mpc_runtime::costs`; spot-check the ones the analysis relies on.
    assert_eq!(
        costs::RANK_SEARCH,
        costs::SORT + costs::PREFIX_SUM + costs::SHUFFLE
    );
    assert_eq!(
        costs::GROUP_MAP,
        costs::SORT + costs::PREFIX_SUM + costs::SHUFFLE
    );
    assert_eq!(costs::LOCAL, 0);
    const _: () = assert!(costs::SORT >= 1 && costs::BROADCAST >= 1);
}

#[test]
fn sub_permutation_products_on_cluster_match_sequential() {
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..5 {
        let n1 = rng.gen_range(5..40);
        let n2 = rng.gen_range(5..40);
        let n3 = rng.gen_range(5..40);
        let sub = |rows: usize, cols: usize, rng: &mut StdRng| {
            let mut out = vec![SubPermutationMatrix::NONE; rows];
            let k = rows.min(cols);
            let mut rs: Vec<usize> = (0..rows).collect();
            let mut cs: Vec<usize> = (0..cols).collect();
            rs.shuffle(rng);
            cs.shuffle(rng);
            for i in 0..k / 2 {
                out[rs[i]] = cs[i] as u32;
            }
            SubPermutationMatrix::from_rows(out, cols)
        };
        let a = sub(n1, n2, &mut rng);
        let b = sub(n2, n3, &mut rng);
        let mut cluster = Cluster::new(MpcConfig::new(n2.max(4), 0.5));
        let got = monge_mpc::mul_sub(&mut cluster, &a, &b, &MulParams::default());
        assert_eq!(got, monge_mpc_suite::monge::mul_steady_ant_sub(&a, &b));
    }
}

#[test]
fn ledger_communication_scales_with_input() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut comms = Vec::new();
    for &n in &[1usize << 10, 1 << 12] {
        let a = random_permutation(n, &mut rng);
        let b = random_permutation(n, &mut rng);
        let mut cluster = Cluster::new(MpcConfig::new(n, 0.5));
        let _ = monge_mpc::mul(&mut cluster, &a, &b, &MulParams::default());
        comms.push(cluster.ledger().communication);
    }
    assert!(
        comms[1] > comms[0],
        "communication must grow with n: {comms:?}"
    );
}
