//! Property-based tests (proptest) for the core invariants of the seaweed algebra
//! and the distributed algorithms.

use monge_mpc_suite::monge::distribution::DistributionMatrix;
use monge_mpc_suite::monge::multiway::mul_multiway;
use monge_mpc_suite::monge::{mul_dense, mul_steady_ant, PermutationMatrix, SubPermutationMatrix};
use monge_mpc_suite::monge_mpc::{self, GridPhase, MulParams};
use monge_mpc_suite::mpc_runtime::{Cluster, FaultPlan, MpcConfig};
use monge_mpc_suite::seaweed_lis::baselines::{lcs_length_dp, lis_length_patience};
use monge_mpc_suite::seaweed_lis::kernel::{compose_horizontal, SeaweedKernel};
use monge_mpc_suite::seaweed_lis::lis::lis_length;
use monge_mpc_suite::{lis_mpc, seaweed_lis};
use proptest::prelude::*;

/// Strategy: a uniformly random permutation of 0..n (n fixed).
fn perm_of(n: usize) -> impl Strategy<Value = Vec<u32>> {
    Just((0..n as u32).collect::<Vec<u32>>()).prop_shuffle()
}

/// Strategy: two random permutations of the same (random) size.
fn perm_pair(max_n: usize) -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (1..=max_n).prop_flat_map(|n| (perm_of(n), perm_of(n)))
}

/// Strategy: three random permutations of the same (random) size.
fn perm_triple(max_n: usize) -> impl Strategy<Value = (Vec<u32>, Vec<u32>, Vec<u32>)> {
    (1..=max_n).prop_flat_map(|n| (perm_of(n), perm_of(n), perm_of(n)))
}

/// Strategy: a random sequence with duplicates.
fn sequence(max_n: usize, alphabet: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..alphabet, 0..=max_n)
}

/// Strategy: a chaos schedule of up to three fault events, each a
/// `(machine seed, superstep, kill | delay(d))` triple. Machine seeds are
/// reduced mod the cluster's machine count at plan-build time.
fn chaos_schedule() -> impl Strategy<Value = Vec<(usize, u64, Option<u64>)>> {
    // Kind 0..3 draws a kill, 3..6 a delay of 1–3 supersteps (kills weighted
    // up: they are the interesting path — replica restore and re-merge).
    prop::collection::vec(
        (0usize..64, 1u64..300, 0u64..6).prop_map(|(mseed, step, kind)| {
            (mseed, step, if kind < 3 { None } else { Some(kind - 2) })
        }),
        1..=3,
    )
}

/// Builds a [`FaultPlan`] from a chaos schedule for a cluster of `machines`.
fn plan_from_schedule(schedule: &[(usize, u64, Option<u64>)], machines: usize) -> FaultPlan {
    schedule
        .iter()
        .fold(FaultPlan::none(), |plan, &(mseed, step, delay)| {
            let machine = mseed % machines;
            match delay {
                Some(d) => plan.and_delay(machine, step, d),
                None => plan.and_kill(machine, step),
            }
        })
}

/// Masks a permutation into a (square) sub-permutation: rows where the mask is
/// zero become empty.
fn subperm_from(perm: &[u32], mask: &[u32]) -> SubPermutationMatrix {
    let n = perm.len();
    let rows: Vec<u32> = perm
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            if mask[i % mask.len().max(1)] == 1 {
                c
            } else {
                SubPermutationMatrix::NONE
            }
        })
        .collect();
    SubPermutationMatrix::from_rows(rows, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tiskin's Lemma 2.1: the steady ant computes exactly the (min,+) product.
    #[test]
    fn steady_ant_matches_dense((a, b) in perm_pair(48)) {
        let pa = PermutationMatrix::from_rows(a);
        let pb = PermutationMatrix::from_rows(b);
        prop_assert_eq!(mul_steady_ant(&pa, &pb), mul_dense(&pa, &pb));
    }

    /// The distribution matrix of any ⊡ product is (sub)unit-Monge.
    #[test]
    fn products_are_monge((a, b) in perm_pair(40)) {
        let pa = PermutationMatrix::from_rows(a);
        let pb = PermutationMatrix::from_rows(b);
        let c = mul_steady_ant(&pa, &pb);
        let d = DistributionMatrix::from_permutation(&c);
        prop_assert!(d.is_monge());
    }

    /// The H-way combine of Section 3 agrees with the binary steady ant.
    #[test]
    fn multiway_combine_matches((a, b) in perm_pair(40), h in 2usize..6, g in 2usize..12) {
        let pa = PermutationMatrix::from_rows(a);
        let pb = PermutationMatrix::from_rows(b);
        prop_assert_eq!(mul_multiway(&pa, &pb, h, g), mul_steady_ant(&pa, &pb));
    }

    /// ⊡ is associative (seaweed braids form a monoid).
    #[test]
    fn product_is_associative((a, b, c) in perm_triple(32)) {
        let (pa, pb, pc) = (
            PermutationMatrix::from_rows(a),
            PermutationMatrix::from_rows(b),
            PermutationMatrix::from_rows(c),
        );
        let left = mul_steady_ant(&mul_steady_ant(&pa, &pb), &pc);
        let right = mul_steady_ant(&pa, &mul_steady_ant(&pb, &pc));
        prop_assert_eq!(left, right);
    }

    /// The MPC multiplication agrees with the sequential algorithm for every choice
    /// of fan-out, grid spacing and local threshold.
    #[test]
    fn mpc_mul_matches_sequential((a, b) in perm_pair(60),
                                  h in 2usize..5, g in 3usize..10, thr in 6usize..20) {
        let pa = PermutationMatrix::from_rows(a);
        let pb = PermutationMatrix::from_rows(b);
        let expected = mul_steady_ant(&pa, &pb);
        let mut cluster = Cluster::new(MpcConfig::lenient(pa.size().max(4), 0.5).with_space(thr * 2));
        let params = MulParams::default().with_h(h).with_g(g).with_local_threshold(thr);
        prop_assert_eq!(monge_mpc::mul(&mut cluster, &pa, &pb, &params), expected);
    }

    /// The bit-parallel comb (comparison-rule + word-skip fast path) is
    /// bit-identical to the crossing-history oracle comb on duplicate-heavy
    /// inputs — the regime where the match masks are densest and the
    /// word-transparency shortcut is exercised hardest.
    #[test]
    fn comb_bitparallel_matches_oracle(x in sequence(24, 4), y in sequence(80, 4)) {
        prop_assert_eq!(
            SeaweedKernel::comb_bitparallel(&x, &y),
            SeaweedKernel::comb(&x, &y)
        );
    }

    /// The arena-backed steady ant (pooled workspace + dense base case) is
    /// bit-identical to the allocate-per-level reference recursion.
    #[test]
    fn workspace_steady_ant_matches_reference((a, b) in perm_pair(96)) {
        prop_assert_eq!(
            monge_mpc_suite::monge::steady_ant::mul_rows(&a, &b),
            monge_mpc_suite::monge::steady_ant::mul_rows_reference(&a, &b)
        );
    }

    /// The data-parallel batch product equals a sequential loop of `mul`, at
    /// every thread count: per-worker arenas must not leak state across
    /// instances or workers.
    #[test]
    fn mul_batch_matches_sequential_across_threads(
        (a, b) in perm_pair(48), (c, d) in perm_pair(33), threads in 1usize..=4
    ) {
        let instances = vec![
            (PermutationMatrix::from_rows(a), PermutationMatrix::from_rows(b)),
            (PermutationMatrix::from_rows(c), PermutationMatrix::from_rows(d)),
        ];
        let expected: Vec<PermutationMatrix> = instances
            .iter()
            .map(|(pa, pb)| mul_steady_ant(pa, pb))
            .collect();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let got = pool.install(|| monge_mpc_suite::monge::mul_steady_ant_batch(&instances));
        prop_assert_eq!(got, expected);
    }

    /// Kernel window queries equal the DP LCS for every window.
    #[test]
    fn kernel_windows_match_dp(x in sequence(10, 4), y in sequence(12, 4)) {
        let k = SeaweedKernel::comb(&x, &y);
        for l in 0..=y.len() {
            for r in l..=y.len() {
                prop_assert_eq!(k.lcs_window(l, r), lcs_length_dp(&x, &y[l..r]));
            }
        }
    }

    /// Kernel composition equals combing the concatenation.
    #[test]
    fn kernel_composition(x in sequence(8, 3), y1 in sequence(8, 3), y2 in sequence(8, 3)) {
        prop_assume!(!x.is_empty());
        let k1 = SeaweedKernel::comb(&x, &y1);
        let k2 = SeaweedKernel::comb(&x, &y2);
        let composed = compose_horizontal(&k1, &k2);
        let concat: Vec<u32> = y1.iter().chain(y2.iter()).copied().collect();
        prop_assert_eq!(composed, SeaweedKernel::comb(&x, &concat));
    }

    /// The seaweed-based LIS equals patience sorting on arbitrary sequences.
    #[test]
    fn seaweed_lis_matches_patience(seq in sequence(120, 30)) {
        prop_assert_eq!(lis_length(&seq), lis_length_patience(&seq));
    }

    /// The MPC LIS equals patience sorting on *strict* clusters, across δ and
    /// space budgets (recursion depths): every case doubles as a
    /// zero-violation assertion, since an overshoot panics.
    #[test]
    fn mpc_lis_matches_patience_strict(seq in sequence(150, 50),
                                       delta_tenths in 3usize..9,
                                       space_mult in 1usize..4) {
        let n = seq.len().max(4);
        let delta = delta_tenths as f64 / 10.0;
        let base = MpcConfig::new(n, delta);
        let space = base.space * space_mult;
        let mut cluster = Cluster::new(base.with_space(space));
        let got = lis_mpc::lis_length_mpc(&mut cluster, &seq, &MulParams::default());
        prop_assert_eq!(got, lis_length_patience(&seq));
        prop_assert_eq!(cluster.ledger().space_violations, 0);
    }

    /// The full semi-local MPC LIS kernel equals the sequential seaweed
    /// divide-and-conquer baseline, bit for bit, on strict clusters.
    #[test]
    fn mpc_lis_kernel_matches_sequential_strict(seq in sequence(120, 40),
                                                delta_tenths in 4usize..9) {
        prop_assume!(!seq.is_empty());
        let delta = delta_tenths as f64 / 10.0;
        let mut cluster = Cluster::new(MpcConfig::new(seq.len().max(4), delta));
        let outcome = lis_mpc::lis_kernel_mpc(&mut cluster, &seq, &MulParams::default());
        prop_assert_eq!(outcome.kernel, seaweed_lis::lis::lis_kernel(&seq));
    }

    /// Hunt–Szymanski through the MPC pipeline equals the DP LCS on strict
    /// clusters sized for the corollary's Õ(n²) total-space regime.
    #[test]
    fn mpc_lcs_matches_dp_strict(a in sequence(40, 6), b in sequence(40, 6),
                                 delta_tenths in 3usize..8) {
        let total = (a.len() * b.len()).max(4);
        let delta = delta_tenths as f64 / 10.0;
        let mut cluster = Cluster::new(MpcConfig::new(total, delta));
        let got = lis_mpc::lcs_length_mpc(&mut cluster, &a, &b, &MulParams::default());
        prop_assert_eq!(got, lcs_length_dp(&a, &b));
        prop_assert_eq!(cluster.ledger().space_violations, 0);
    }

    /// The space-conformant tree grid phase and the gathering reference oracle are
    /// genuinely distinct code paths that agree bit-for-bit: identical product
    /// nonzeros and identical round counts, across random sub-permutations and
    /// (h, g, δ) choices. (Arbitrary parameter choices sit outside the paper's
    /// regime, so both run with record-only space enforcement.)
    #[test]
    fn grid_phase_tree_matches_reference_on_subperms(
        (a, b) in perm_pair(44),
        mask_a in prop::collection::vec(0u32..2, 44),
        mask_b in prop::collection::vec(0u32..2, 44),
        h in 2usize..6,
        g in 3usize..12,
        delta_tenths in 2usize..9,
    ) {
        let n = a.len();
        let delta = delta_tenths as f64 / 10.0;
        let sa = subperm_from(&a, &mask_a);
        let sb = subperm_from(&b, &mask_b);
        let base = MulParams::default().with_h(h).with_g(g).with_local_threshold(6);

        let mut tree = Cluster::new(MpcConfig::lenient(n.max(4), delta));
        let got_tree = monge_mpc::mul_sub(
            &mut tree, &sa, &sb, &base.clone().with_grid_phase(GridPhase::Tree));

        let mut reference = Cluster::new(MpcConfig::lenient(n.max(4), delta));
        let got_reference = monge_mpc::mul_sub(
            &mut reference, &sa, &sb, &base.with_grid_phase(GridPhase::Reference));

        prop_assert_eq!(got_tree, got_reference);
        prop_assert_eq!(tree.rounds(), reference.rounds());
    }

    /// Semi-local LIS window queries match brute force on arbitrary windows.
    #[test]
    fn semi_local_lis_windows(seq in sequence(60, 12), l in 0usize..60, r in 0usize..60) {
        let n = seq.len();
        let (l, r) = (l.min(n), r.min(n));
        prop_assume!(l <= r);
        let index = seaweed_lis::lis::SemiLocalLis::new(&seq);
        prop_assert_eq!(index.lis_window(l, r), lis_length_patience(&seq[l..r]));
    }

    /// Duplicate-heavy differential test: MPC LIS vs the patience baseline on a
    /// tiny alphabet, where nearly every element ties. This is the test that
    /// catches an inverted `rank_sequence` tie convention — ranking equal values
    /// ascending by position would let a strict LIS take two copies of the same
    /// value and overshoot on almost every such input.
    #[test]
    fn mpc_lis_matches_patience_on_duplicate_heavy(seq in sequence(160, 3),
                                                   delta_tenths in 3usize..9) {
        let n = seq.len().max(4);
        let delta = delta_tenths as f64 / 10.0;
        let mut cluster = Cluster::new(MpcConfig::new(n, delta));
        let got = lis_mpc::lis_length_mpc(&mut cluster, &seq, &MulParams::default());
        prop_assert_eq!(got, lis_length_patience(&seq), "{:?}", seq);
    }

    /// Witness validity (Theorem 1.3 structured output): the recovered LIS is a
    /// strictly increasing subsequence of the input with exactly the kernel's
    /// length, on strict clusters across δ (and hence merge depths).
    #[test]
    fn mpc_lis_witness_is_valid(seq in sequence(150, 40), delta_tenths in 3usize..9) {
        let n = seq.len().max(4);
        let delta = delta_tenths as f64 / 10.0;
        let mut cluster = Cluster::new(MpcConfig::new(n, delta));
        let outcome = lis_mpc::lis_witness_mpc(&mut cluster, &seq, &MulParams::default());
        let witness = outcome.witness.expect("witness requested");
        prop_assert_eq!(outcome.length, lis_length_patience(&seq));
        prop_assert_eq!(witness.len(), outcome.length);
        prop_assert!(witness.windows(2).all(|w| w[0] < w[1]), "positions not ascending");
        prop_assert!(witness.iter().all(|&p| p < seq.len()), "position out of range");
        prop_assert!(witness.windows(2).all(|w| seq[w[0]] < seq[w[1]]),
                     "values not strictly increasing: {:?} {:?}", seq, witness);
        prop_assert_eq!(cluster.ledger().space_violations, 0);
    }

    /// The distributed witness agrees in length with the sequential traced
    /// kernel's witness (both must be maximal; the subsequences themselves may
    /// differ, since witnesses are not unique).
    #[test]
    fn mpc_lis_witness_matches_traced_sequential(seq in sequence(120, 20),
                                                 delta_tenths in 4usize..8) {
        let n = seq.len().max(4);
        let delta = delta_tenths as f64 / 10.0;
        let mut cluster = Cluster::new(MpcConfig::new(n, delta));
        let outcome = lis_mpc::lis_witness_mpc(&mut cluster, &seq, &MulParams::default());
        let sequential = seaweed_lis::lis::lis_witness(&seq);
        prop_assert_eq!(outcome.witness.expect("witness requested").len(), sequential.len());
    }

    /// LCS witness validity (Corollary 1.3.1 structured output): the recovered
    /// pairs form a genuine common subsequence of both inputs with exactly the
    /// DP length, on strict clusters sized for the pair regime.
    #[test]
    fn mpc_lcs_witness_is_valid(a in sequence(36, 5), b in sequence(36, 5),
                                delta_tenths in 3usize..8) {
        let total = (a.len() * b.len()).max(4);
        let delta = delta_tenths as f64 / 10.0;
        let mut cluster = Cluster::new(MpcConfig::new(total, delta));
        let outcome = lis_mpc::lcs_witness_mpc(&mut cluster, &a, &b, &MulParams::default());
        prop_assert_eq!(outcome.length, lcs_length_dp(&a, &b));
        prop_assert_eq!(outcome.witness.len(), outcome.length);
        prop_assert!(outcome.witness.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1),
                     "indices not strictly ascending in both strings");
        prop_assert!(outcome.witness.iter().all(|&(i, j)| a[i] == b[j]),
                     "not a common subsequence: {:?} {:?} {:?}", a, b, outcome.witness);
        prop_assert_eq!(cluster.ledger().space_violations, 0);
    }
}

// Chaos sweep (ISSUE 6): random kill/delay schedules against the recovery
// layer. Each case runs the full witness pipeline twice (fault-free and
// faulted), so the block uses fewer cases than the cheap algebra tests above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under any schedule of kills and straggler delays, across δ ∈ {0.1..0.5}
    /// and n up to 2^12, the recovered LIS length, kernel and witness are
    /// bit-identical to the fault-free run, with zero strict-space violations
    /// (the strict cluster would panic on any overshoot) and every fault
    /// accounted in the ledger.
    #[test]
    fn chaos_lis_recovers_bit_identically(exp in 4usize..=12,
                                          seed in 0u64..1 << 20,
                                          delta_tenths in 1usize..6,
                                          schedule in chaos_schedule()) {
        let n = 1usize << exp;
        let delta = delta_tenths as f64 / 10.0;
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut seq: Vec<u32> = (0..n as u32).collect();
        seq.shuffle(&mut rng);

        let config = MpcConfig::new(n, delta);
        // δ ≤ 0.5 and n ≥ 16 give m ≥ 2, so kill schedules are always legal.
        prop_assert!(config.machines >= 2);
        let plan = plan_from_schedule(&schedule, config.machines);

        let mut plain = Cluster::new(config.clone());
        let baseline = lis_mpc::lis_witness_mpc(&mut plain, &seq, &MulParams::default());
        let mut faulty = Cluster::new(config.with_faults(plan));
        let outcome = lis_mpc::lis_witness_mpc(&mut faulty, &seq, &MulParams::default());

        prop_assert_eq!(outcome.length, baseline.length);
        prop_assert_eq!(outcome.kernel, baseline.kernel);
        prop_assert_eq!(outcome.witness, baseline.witness);
        let ledger = faulty.ledger();
        prop_assert_eq!(ledger.space_violations, 0);
        prop_assert!(ledger.fault_events.len() <= schedule.len());
        // Delays charge stalls, never synchronous rounds; with no kills the
        // round count is exactly the fault-free one.
        if !faulty.config().faults.has_kills() {
            prop_assert_eq!(faulty.rounds(), plain.rounds());
        }
    }

    /// The LCS pipeline funnels through the same merge tree; chaos schedules
    /// must leave its recovered length and witness pairs bit-identical too.
    #[test]
    fn chaos_lcs_recovers_bit_identically(a in sequence(30, 5), b in sequence(30, 5),
                                          delta_tenths in 1usize..6,
                                          schedule in chaos_schedule()) {
        let total = (a.len() * b.len()).max(16);
        let delta = delta_tenths as f64 / 10.0;
        let config = MpcConfig::new(total, delta);
        prop_assert!(config.machines >= 2);
        let plan = plan_from_schedule(&schedule, config.machines);

        let mut plain = Cluster::new(config.clone());
        let baseline = lis_mpc::lcs_witness_mpc(&mut plain, &a, &b, &MulParams::default());
        let mut faulty = Cluster::new(config.with_faults(plan));
        let outcome = lis_mpc::lcs_witness_mpc(&mut faulty, &a, &b, &MulParams::default());

        prop_assert_eq!(outcome.length, baseline.length);
        prop_assert_eq!(outcome.length, lcs_length_dp(&a, &b));
        prop_assert_eq!(outcome.witness, baseline.witness);
        prop_assert_eq!(faulty.ledger().space_violations, 0);
    }
}

// Incremental append (ISSUE 9): growing a kernel block-by-block must be
// indistinguishable from building it from scratch — same kernel bits, same
// window answers, same witnesses — for random cut schedules, comb block
// sizes and δ. Each case folds the grown spine and a fresh build, so the
// block budgets its cases like the chaos sweep above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn incremental_append_is_indistinguishable_from_rebuild(
        seq in sequence(400, 64),
        cuts in prop::collection::vec(0usize..=400, 0..4),
        block_exp in 3usize..=6,
        delta_tenths in 2usize..6,
    ) {
        use monge_mpc_suite::lis_mpc::{recover_batch, AppendableLisKernel, WitnessTrace};
        use monge_mpc_suite::seaweed_lis::lis::{lis_kernel, SemiLocalLis};

        let n = seq.len();
        let block_size = 1usize << block_exp;
        let delta = delta_tenths as f64 / 10.0;
        let config = MpcConfig::lenient(n.max(4), delta);

        // Grow through an arbitrary cut schedule…
        let mut grown_cluster = Cluster::new(config.clone());
        let mut grown = AppendableLisKernel::new(block_size);
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c.min(n)).collect();
        cuts.push(n);
        cuts.sort_unstable();
        let mut prev = 0;
        for cut in cuts {
            if cut > prev {
                grown.append(&mut grown_cluster, &seq[prev..cut]);
                prev = cut;
            }
        }

        // …and compare against a one-shot build and the direct kernel.
        let mut rebuild_cluster = Cluster::new(config);
        let mut rebuilt = AppendableLisKernel::build(&mut rebuild_cluster, &seq, block_size);
        prop_assert_eq!(
            grown.kernel(&mut grown_cluster),
            rebuilt.kernel(&mut rebuild_cluster)
        );
        prop_assert_eq!(grown.kernel(&mut grown_cluster), &lis_kernel(&seq));

        // Window answers off the grown kernel match the direct structure.
        let direct = SemiLocalLis::new(&seq);
        let semi = SemiLocalLis::from_kernel(grown.kernel(&mut grown_cluster));
        for (l, r) in [(0, n), (n / 3, 2 * n / 3), (n / 2, n / 2), (n.saturating_sub(7), n)] {
            prop_assert_eq!(semi.try_lis_window(l, r), direct.try_lis_window(l, r));
        }

        // Witness descents over the grown cluster realize genuine increasing
        // subsequences of exactly the semi-local lengths.
        let trace = WitnessTrace::record(&seq, block_size);
        let windows = [(0, n), (n / 4, 3 * n / 4)];
        let witnesses = recover_batch(&mut grown_cluster, &trace, &windows, "prop-witness");
        for (witness, &(vlo, vhi)) in witnesses.iter().zip(&windows) {
            prop_assert_eq!(witness.len(), trace.value_window_lis(vlo, vhi));
            for pair in witness.windows(2) {
                prop_assert!(pair[0] < pair[1]);
                prop_assert!(seq[pair[0]] < seq[pair[1]]);
            }
            for &p in witness {
                prop_assert!((vlo..vhi).contains(&(trace.ranks()[p] as usize)));
            }
        }
        prop_assert_eq!(grown_cluster.ledger().space_violations, 0);
    }
}
